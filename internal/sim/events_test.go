package sim

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/tele3d/tele3d/internal/overlay"
	"github.com/tele3d/tele3d/internal/stream"
)

// starProblem builds a 3-node instance with ample capacity: source 0 can
// serve both other nodes directly.
func starProblem(requests ...overlay.Request) *overlay.Problem {
	return &overlay.Problem{
		In: []int{5, 5, 5}, Out: []int{5, 5, 5},
		Cost:     [][]float64{{0, 5, 5}, {5, 0, 5}, {5, 5, 0}},
		Bcost:    100,
		Requests: requests,
	}
}

func testProfile() stream.Profile {
	// 10 fps: frames at 0, 100, 200, ... ms.
	return stream.Profile{Width: 64, Height: 48, FPS: 10, CompressionRatio: 10}
}

func TestRunEventsEmptyTraceMatchesStaticRun(t *testing.T) {
	prof := testProfile()
	staticRes, err := Run(Config{Forest: chainForest(t), Profile: prof, DurationMs: 1000})
	if err != nil {
		t.Fatal(err)
	}
	evRes, err := RunEvents(Config{Forest: chainForest(t), Profile: prof, DurationMs: 1000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(staticRes.PerSubscription, evRes.PerSubscription) {
		t.Errorf("per-subscription stats diverge:\nstatic %+v\nevents %+v",
			staticRes.PerSubscription, evRes.PerSubscription)
	}
	if staticRes.TotalFrames != evRes.TotalFrames || staticRes.MaxLatencyMs != evRes.MaxLatencyMs {
		t.Errorf("totals diverge: static (%d, %v), events (%d, %v)",
			staticRes.TotalFrames, staticRes.MaxLatencyMs, evRes.TotalFrames, evRes.MaxLatencyMs)
	}
}

func TestRunEventsMidSessionSubscribeDisruption(t *testing.T) {
	sID := stream.ID{Site: 0, Index: 0}
	p := starProblem(overlay.Request{Node: 1, Stream: sID})
	f, err := overlay.RJ{}.Construct(p, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	// Node 2 subscribes at t=150ms and attaches under node 1 (RFC 5 beats
	// the source's 4 under max-rfc), two hops at 5ms each. The frame
	// captured at 200ms is the first forwarded to it: arrival 210,
	// disruption 60ms, frame latency 10ms.
	events := []Event{{AtMs: 150, Kind: EventSubscribe, Node: 2, Gained: []stream.ID{sID}}}
	res, err := RunEvents(Config{Forest: f, Profile: testProfile(), DurationMs: 1000}, events)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) != 1 {
		t.Fatalf("outcomes = %d, want 1", len(res.Events))
	}
	out := res.Events[0]
	if out.GainedAccepted != 1 || out.GainedRejected != 0 || out.Skipped != 0 {
		t.Fatalf("outcome %+v, want 1 accepted", out)
	}
	if out.DeliveredGained != 1 || out.Undelivered != 0 {
		t.Fatalf("outcome %+v, want 1 delivered", out)
	}
	if math.Abs(out.MeanDisruptionMs-60) > 1e-9 || math.Abs(out.MaxDisruptionMs-60) > 1e-9 {
		t.Errorf("disruption mean %.2f max %.2f, want 60", out.MeanDisruptionMs, out.MaxDisruptionMs)
	}
	if math.Abs(res.MeanDisruptionMs-60) > 1e-9 {
		t.Errorf("aggregate disruption %.2f, want 60", res.MeanDisruptionMs)
	}
	// Node 2 receives frames 2..9: 8 frames at 5ms each.
	for _, st := range res.PerSubscription {
		if st.Node != 2 {
			continue
		}
		if st.Frames != 8 {
			t.Errorf("node 2 frames = %d, want 8", st.Frames)
		}
		if math.Abs(st.MeanLatMs-10) > 1e-9 {
			t.Errorf("node 2 mean latency %.2f, want 10", st.MeanLatMs)
		}
		if st.Hops != 2 {
			t.Errorf("node 2 hops = %d, want 2", st.Hops)
		}
	}
	if err := f.Validate(); err != nil {
		t.Errorf("forest invalid after trace: %v", err)
	}
}

func TestRunEventsUnsubscribeStopsDeliveryAndReattaches(t *testing.T) {
	// Chain 0 -> relay -> leaf (source out-degree 1). The relay leaves at
	// t=450ms; the leaf must be re-attached under the source and keep
	// receiving, while the relay receives nothing afterwards.
	f := chainForest(t)
	sID := stream.ID{Site: 0, Index: 0}
	relay := f.Tree(sID).Children(0)[0]
	leaf := 3 - relay
	events := []Event{{AtMs: 450, Kind: EventUnsubscribe, Node: relay, Lost: []stream.ID{sID}}}
	res, err := RunEvents(Config{Forest: f, Profile: testProfile(), DurationMs: 1000}, events)
	if err != nil {
		t.Fatal(err)
	}
	if out := res.Events[0]; out.LostApplied != 1 || out.Skipped != 0 {
		t.Fatalf("outcome %+v, want 1 lost applied", out)
	}
	tr := f.Tree(sID)
	if tr.Contains(relay) {
		t.Error("relay still in tree after trace")
	}
	if parent, _ := tr.Parent(leaf); parent != 0 {
		t.Errorf("leaf parent = %d, want source", parent)
	}
	var relayFrames, leafFrames int
	for _, st := range res.PerSubscription {
		switch st.Node {
		case relay:
			relayFrames = st.Frames
		case leaf:
			leafFrames = st.Frames
		}
	}
	// The relay sees frames 0..4 (captures at 0..400, arrival +10ms each).
	if relayFrames != 5 {
		t.Errorf("relay frames = %d, want 5", relayFrames)
	}
	// The leaf misses at most the frame in flight during the switch.
	if leafFrames < 9 {
		t.Errorf("leaf frames = %d, want >= 9", leafFrames)
	}
	if err := f.Validate(); err != nil {
		t.Errorf("forest invalid after trace: %v", err)
	}
}

func TestRunEventsViewChangeSwapsStreams(t *testing.T) {
	a := stream.ID{Site: 0, Index: 0}
	b := stream.ID{Site: 0, Index: 1}
	p := starProblem(overlay.Request{Node: 1, Stream: a})
	f, err := overlay.RJ{}.Construct(p, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	events := []Event{{
		AtMs: 250, Kind: EventViewChange, Node: 1,
		Gained: []stream.ID{b}, Lost: []stream.ID{a},
	}}
	res, err := RunEvents(Config{Forest: f, Profile: testProfile(), DurationMs: 1000}, events)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Events[0]
	if out.LostApplied != 1 || out.GainedAccepted != 1 {
		t.Fatalf("outcome %+v, want swap applied", out)
	}
	// Stream b's first frame after 250ms is captured at 300, arrives 305.
	if math.Abs(out.MeanDisruptionMs-55) > 1e-9 {
		t.Errorf("disruption %.2f, want 55", out.MeanDisruptionMs)
	}
	var aFrames, bFrames int
	for _, st := range res.PerSubscription {
		switch st.Stream {
		case a:
			aFrames = st.Frames
		case b:
			bFrames = st.Frames
		}
	}
	if aFrames != 3 { // captures at 0, 100, 200
		t.Errorf("stream a frames = %d, want 3", aFrames)
	}
	if bFrames != 7 { // captures at 300..900
		t.Errorf("stream b frames = %d, want 7", bFrames)
	}
	if f.Tree(a) != nil && f.Tree(a).Contains(1) {
		t.Error("node 1 still receives a")
	}
	if err := f.Validate(); err != nil {
		t.Errorf("forest invalid after trace: %v", err)
	}
}

func TestRunEventsSkipsInapplicableOps(t *testing.T) {
	sID := stream.ID{Site: 0, Index: 0}
	p := starProblem(overlay.Request{Node: 1, Stream: sID})
	f, err := overlay.RJ{}.Construct(p, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	events := []Event{
		// Duplicate subscribe, unknown unsubscribe, out-of-range node.
		{AtMs: 100, Kind: EventSubscribe, Node: 1, Gained: []stream.ID{sID}},
		{AtMs: 200, Kind: EventUnsubscribe, Node: 2, Lost: []stream.ID{sID}},
		{AtMs: 300, Kind: EventSubscribe, Node: 99, Gained: []stream.ID{sID}},
	}
	res, err := RunEvents(Config{Forest: f, Profile: testProfile(), DurationMs: 1000}, events)
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range res.Events {
		if out.Skipped != 1 || out.GainedAccepted != 0 || out.LostApplied != 0 {
			t.Errorf("event %d outcome %+v, want 1 skipped", i, out)
		}
	}
	if err := f.Validate(); err != nil {
		t.Errorf("forest invalid after trace: %v", err)
	}
}

func TestRunEventsValidation(t *testing.T) {
	f := chainForest(t)
	prof := testProfile()
	sID := stream.ID{Site: 0, Index: 0}
	cases := []struct {
		name   string
		cfg    Config
		events []Event
	}{
		{"nil forest", Config{Profile: prof, DurationMs: 100}, nil},
		{"zero duration", Config{Forest: f, Profile: prof}, nil},
		{"negative overhead", Config{Forest: f, Profile: prof, DurationMs: 100, HopOverheadMs: -1}, nil},
		{"event after end", Config{Forest: f, Profile: prof, DurationMs: 100},
			[]Event{{AtMs: 100, Kind: EventSubscribe, Node: 1, Gained: []stream.ID{sID}}}},
		{"negative event time", Config{Forest: f, Profile: prof, DurationMs: 100},
			[]Event{{AtMs: -1, Kind: EventSubscribe, Node: 1}}},
		{"unknown kind", Config{Forest: f, Profile: prof, DurationMs: 100},
			[]Event{{AtMs: 1, Kind: EventKind(42), Node: 1}}},
	}
	for _, c := range cases {
		if _, err := RunEvents(c.cfg, c.events); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestRunEventsDeterministic(t *testing.T) {
	build := func() (*overlay.Forest, []Event) {
		sID := stream.ID{Site: 0, Index: 0}
		other := stream.ID{Site: 1, Index: 0}
		p := starProblem(
			overlay.Request{Node: 1, Stream: sID},
			overlay.Request{Node: 2, Stream: sID},
			overlay.Request{Node: 0, Stream: other},
		)
		f, err := overlay.RJ{}.Construct(p, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		return f, []Event{
			{AtMs: 120, Kind: EventViewChange, Node: 2, Gained: []stream.ID{other}, Lost: []stream.ID{sID}},
			{AtMs: 120, Kind: EventSubscribe, Node: 1, Gained: []stream.ID{other}},
			{AtMs: 480, Kind: EventUnsubscribe, Node: 0, Lost: []stream.ID{other}},
		}
	}
	f1, ev1 := build()
	r1, err := RunEvents(Config{Forest: f1, Profile: testProfile(), DurationMs: 900}, ev1)
	if err != nil {
		t.Fatal(err)
	}
	f2, ev2 := build()
	r2, err := RunEvents(Config{Forest: f2, Profile: testProfile(), DurationMs: 900}, ev2)
	if err != nil {
		t.Fatal(err)
	}
	// BatchApplyMs is wall clock — the one field documented outside the
	// determinism contract — so it is zeroed before the comparison.
	if r1.BatchApplyMs <= 0 || r2.BatchApplyMs <= 0 {
		t.Errorf("batch-apply phase not timed: %v, %v", r1.BatchApplyMs, r2.BatchApplyMs)
	}
	r1.BatchApplyMs, r2.BatchApplyMs = 0, 0
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("identical traces diverge:\n%+v\n%+v", r1, r2)
	}
	if err := VerifyEventLowerBound(Config{Forest: f1, Profile: testProfile(), DurationMs: 900}, r1); err != nil {
		t.Errorf("lower bound: %v", err)
	}
}

func TestRunEventsWithdrawnBeforeFirstFrameIsUndelivered(t *testing.T) {
	sID := stream.ID{Site: 0, Index: 0}
	p := starProblem(overlay.Request{Node: 1, Stream: sID})
	f, err := overlay.RJ{}.Construct(p, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	// Node 2 gains the stream at t=110 and withdraws at t=150 — before
	// the next frame (captured at 200) could reach it. The accepted gain
	// must settle as Undelivered on the subscribing event.
	events := []Event{
		{AtMs: 110, Kind: EventSubscribe, Node: 2, Gained: []stream.ID{sID}},
		{AtMs: 150, Kind: EventUnsubscribe, Node: 2, Lost: []stream.ID{sID}},
	}
	res, err := RunEvents(Config{Forest: f, Profile: testProfile(), DurationMs: 1000}, events)
	if err != nil {
		t.Fatal(err)
	}
	sub := res.Events[0]
	if sub.GainedAccepted != 1 || sub.DeliveredGained != 0 || sub.Undelivered != 1 {
		t.Errorf("subscribe outcome %+v, want accepted=1 undelivered=1", sub)
	}
	if res.UndeliveredGained != 1 || res.DeliveredGained != 0 {
		t.Errorf("aggregate delivered=%d undelivered=%d, want 0/1", res.DeliveredGained, res.UndeliveredGained)
	}
}

func TestRunEventsResubscribeStartsFreshDedupEpoch(t *testing.T) {
	// Source 0 serves node 1 directly (5ms) and relay 2 over a slow edge
	// (60ms). Node 1 unsubscribes at t=110 and re-subscribes at t=150,
	// attaching under the relay (higher RFC). Frame seq 1 (captured at
	// 100) was already delivered to node 1 at t=105 in its first
	// membership; the relay receives it at 160 and forwards it, arriving
	// at t=165 — a legitimate re-delivery to the new membership that the
	// dedup must NOT suppress. Disruption is therefore 15ms, not the
	// 115ms a stale-epoch suppression would report.
	sID := stream.ID{Site: 0, Index: 0}
	cost := [][]float64{{0, 5, 60}, {5, 0, 5}, {60, 5, 0}}
	p := &overlay.Problem{
		// Out[1] = 0 keeps node 1 from relaying, forcing the initial
		// star 0→1, 0→2 rather than a chain through node 1.
		In: []int{5, 5, 5}, Out: []int{2, 0, 5},
		Cost: cost, Bcost: 100,
		Requests: []overlay.Request{{Node: 1, Stream: sID}, {Node: 2, Stream: sID}},
	}
	f, err := overlay.NewForest(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range p.Requests {
		if res := f.Join(r); res != overlay.Joined {
			t.Fatalf("join %v: %v", r, res)
		}
	}
	events := []Event{
		{AtMs: 110, Kind: EventUnsubscribe, Node: 1, Lost: []stream.ID{sID}},
		{AtMs: 150, Kind: EventSubscribe, Node: 1, Gained: []stream.ID{sID}},
	}
	res, err := RunEvents(Config{Forest: f, Profile: testProfile(), DurationMs: 400}, events)
	if err != nil {
		t.Fatal(err)
	}
	if parent, _ := f.Tree(sID).Parent(1); parent != 2 {
		t.Fatalf("node 1 re-attached under %d, want relay 2", parent)
	}
	resub := res.Events[1]
	if resub.GainedAccepted != 1 || resub.DeliveredGained != 1 {
		t.Fatalf("resubscribe outcome %+v, want 1 delivered", resub)
	}
	if math.Abs(resub.MeanDisruptionMs-15) > 1e-9 {
		t.Errorf("disruption %.2f, want 15 (seq 1 re-delivered at t=165)", resub.MeanDisruptionMs)
	}
	// Node 1's cumulative count: seq 0,1 in the first epoch (t=5, 105)
	// plus seq 1,2,3 via the relay in the second (t=165, 265, 365).
	for _, st := range res.PerSubscription {
		if st.Node == 1 && st.Frames != 5 {
			t.Errorf("node 1 frames = %d, want 5 (seq 1 counted in both epochs)", st.Frames)
		}
	}
}
