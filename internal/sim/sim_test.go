package sim

import (
	"math"
	"math/rand"
	"testing"

	"github.com/tele3d/tele3d/internal/overlay"
	"github.com/tele3d/tele3d/internal/stream"
	"github.com/tele3d/tele3d/internal/workload"
)

func chainForest(t *testing.T) *overlay.Forest {
	t.Helper()
	// Source 0 with Out=1 forces the chain 0 -> a -> b.
	sID := stream.ID{Site: 0, Index: 0}
	cost := [][]float64{{0, 10, 10}, {10, 0, 10}, {10, 10, 0}}
	p := &overlay.Problem{
		In: []int{5, 5, 5}, Out: []int{1, 5, 5},
		Cost: cost, Bcost: 100,
		Requests: []overlay.Request{{Node: 1, Stream: sID}, {Node: 2, Stream: sID}},
	}
	f, err := overlay.RJ{}.Construct(p, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rejected()) != 0 {
		t.Fatalf("rejections: %v", f.Rejected())
	}
	return f
}

func TestRunChainLatencies(t *testing.T) {
	f := chainForest(t)
	prof := stream.Profile{Width: 64, Height: 48, FPS: 10, CompressionRatio: 10}
	res, err := Run(Config{Forest: f, Profile: prof, DurationMs: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// 10 fps for 1000ms = 10 frames; 2 subscribers.
	if res.TotalFrames != 20 {
		t.Errorf("TotalFrames = %d, want 20", res.TotalFrames)
	}
	if len(res.PerSubscription) != 2 {
		t.Fatalf("per-subscription entries = %d, want 2", len(res.PerSubscription))
	}
	for _, st := range res.PerSubscription {
		wantLat := 10.0 * float64(st.Hops)
		if math.Abs(st.MeanLatMs-wantLat) > 1e-9 || math.Abs(st.MaxLatMs-wantLat) > 1e-9 {
			t.Errorf("node %d: latency mean %.2f max %.2f, want %.2f (hops=%d)",
				st.Node, st.MeanLatMs, st.MaxLatMs, wantLat, st.Hops)
		}
		if st.Frames != 10 {
			t.Errorf("node %d frames = %d, want 10", st.Node, st.Frames)
		}
	}
	// One subscriber is one hop away, the other two hops.
	hops := map[int]bool{}
	for _, st := range res.PerSubscription {
		hops[st.Hops] = true
	}
	if !hops[1] || !hops[2] {
		t.Errorf("expected hop counts {1,2}, got %v", hops)
	}
	if res.MaxLatencyMs != 20 {
		t.Errorf("MaxLatencyMs = %v, want 20", res.MaxLatencyMs)
	}
}

func TestHopOverhead(t *testing.T) {
	f := chainForest(t)
	prof := stream.Profile{Width: 64, Height: 48, FPS: 10, CompressionRatio: 10}
	res, err := Run(Config{Forest: f, Profile: prof, DurationMs: 300, HopOverheadMs: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range res.PerSubscription {
		want := 15.0 * float64(st.Hops)
		if math.Abs(st.MeanLatMs-want) > 1e-9 {
			t.Errorf("node %d latency %.2f, want %.2f with overhead", st.Node, st.MeanLatMs, want)
		}
	}
}

func TestVerifyLatencyBound(t *testing.T) {
	f := chainForest(t)
	prof := stream.Profile{Width: 64, Height: 48, FPS: 10, CompressionRatio: 10}
	cfg := Config{Forest: f, Profile: prof, DurationMs: 500}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyLatencyBound(cfg, res); err != nil {
		t.Errorf("bound violated: %v", err)
	}
}

func TestPaperScaleSessionSatisfiesBound(t *testing.T) {
	// A full paper-style instance: every accepted subscription must be
	// served within Bcost at frame granularity.
	rng := rand.New(rand.NewSource(5))
	w, err := workload.Generate(workload.Config{
		N: 8, Capacity: workload.CapacityUniform, Popularity: workload.PopularityRandom,
		Mode: workload.ModeCoverage, CoverageRate: 1.0, SubscribeFraction: 0.12,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	n := 8
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c := 5 + rng.Float64()*40
			cost[i][j], cost[j][i] = c, c
		}
	}
	p, err := overlay.FromWorkload(w, cost, 90)
	if err != nil {
		t.Fatal(err)
	}
	f, err := overlay.RJ{}.Construct(p, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Forest: f, Profile: stream.DefaultProfile(), DurationMs: 2000}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalFrames == 0 {
		t.Fatal("no frames simulated")
	}
	if err := VerifyLatencyBound(cfg, res); err != nil {
		t.Errorf("latency bound violated on accepted subscription: %v", err)
	}
	// Every accepted request appears in the result with full frame rate.
	wantFrames := int(2000 / stream.DefaultProfile().FrameIntervalMs())
	if len(res.PerSubscription) != len(f.Accepted()) {
		t.Errorf("per-subscription entries %d != accepted %d", len(res.PerSubscription), len(f.Accepted()))
	}
	for _, st := range res.PerSubscription {
		if st.Frames != wantFrames {
			t.Errorf("node %d stream %s got %d frames, want %d", st.Node, st.Stream, st.Frames, wantFrames)
		}
	}
}

func TestRunValidation(t *testing.T) {
	f := chainForest(t)
	prof := stream.Profile{Width: 64, Height: 48, FPS: 10, CompressionRatio: 10}
	if _, err := Run(Config{Forest: nil, Profile: prof, DurationMs: 100}); err == nil {
		t.Error("nil forest accepted")
	}
	if _, err := Run(Config{Forest: f, Profile: stream.Profile{}, DurationMs: 100}); err == nil {
		t.Error("invalid profile accepted")
	}
	if _, err := Run(Config{Forest: f, Profile: prof, DurationMs: 0}); err == nil {
		t.Error("zero duration accepted")
	}
}
