package sim

// events.go makes the simulator event-driven: in addition to replaying a
// frame schedule over a static forest (Run), RunEvents accepts a
// time-stamped control trace — subscribe, unsubscribe and FOV view-change
// events — and applies it to the live forest mid-session through the
// overlay's dynamic operations. Frames keep flowing while the forest
// reconfigures: a frame already in flight to a node that just left is
// discarded at arrival, a subtree re-attached under a new parent misses
// the frames its old parent would have forwarded, and a freshly admitted
// subscriber starts receiving at the next frame its parent forwards.
//
// The headline metric this unlocks is *disruption latency*: for every
// event that gains streams (a view change rotating a display's FOV, or a
// plain subscribe), the time from the event to the first delivered frame
// of each newly needed stream. This is what a viewer actually experiences
// when the view changes mid-session — the quantity the paper's §6 future
// work points at measuring for ViewCast-style view dynamics.

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/tele3d/tele3d/internal/overlay"
	"github.com/tele3d/tele3d/internal/stream"
)

// EventKind classifies a control event.
type EventKind int

const (
	// EventSubscribe adds the Gained streams to the node's subscriptions.
	EventSubscribe EventKind = iota
	// EventUnsubscribe withdraws the Lost streams from the node.
	EventUnsubscribe
	// EventViewChange atomically swaps part of the node's view: the Lost
	// streams are withdrawn, then the Gained streams are subscribed — the
	// dissemination-level image of a display's FOV rotating.
	EventViewChange
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventSubscribe:
		return "subscribe"
	case EventUnsubscribe:
		return "unsubscribe"
	case EventViewChange:
		return "view-change"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one time-stamped control operation on the live forest.
type Event struct {
	// AtMs is the event time in session-relative milliseconds.
	AtMs float64
	// Kind selects the operation.
	Kind EventKind
	// Node is the subscribing RP.
	Node int
	// Gained lists streams to subscribe (EventSubscribe, EventViewChange).
	Gained []stream.ID
	// Lost lists streams to unsubscribe (EventUnsubscribe, EventViewChange).
	Lost []stream.ID
}

// EventOutcome reports what one event did to the forest and what the
// subscriber experienced afterwards.
type EventOutcome struct {
	// Index is the event's position in the (time-sorted) trace.
	Index int
	AtMs  float64
	Kind  EventKind
	Node  int
	// GainedAccepted and GainedRejected partition the event's admitted
	// gained streams by join outcome; Skipped counts operations the forest
	// could not apply (duplicate subscribes, unknown unsubscribes, invalid
	// targets) — a replayed trace that drifted from the forest state.
	GainedAccepted int
	GainedRejected int
	Skipped        int
	// LostApplied counts successful unsubscribes.
	LostApplied int
	// DeliveredGained counts accepted gained streams that received at
	// least one frame before session end; Undelivered the remainder —
	// gains still dry at session end, plus gains withdrawn (or
	// superseded by a re-subscribe) before their first frame arrived.
	// DeliveredGained + Undelivered == GainedAccepted always holds.
	DeliveredGained int
	Undelivered     int
	// MeanDisruptionMs and MaxDisruptionMs summarize, over the delivered
	// gained streams, the time from the event to the first delivered frame
	// of that stream.
	MeanDisruptionMs float64
	MaxDisruptionMs  float64
}

// EventResult is a completed event-driven simulation.
type EventResult struct {
	// PerSubscription accumulates delivery stats per (node, stream) pair
	// over the whole session, including pairs whose membership started or
	// ended mid-session; sorted by (node, stream). Hops is the overlay
	// path length at session end (0 if the node is no longer a member).
	PerSubscription []DeliveryStats
	// TotalFrames counts frame deliveries; MaxLatencyMs the worst frame
	// latency observed anywhere.
	TotalFrames  int
	MaxLatencyMs float64
	// Events holds one outcome per control event, in trace order.
	Events []EventOutcome
	// MeanDisruptionMs and MaxDisruptionMs aggregate disruption latency
	// over every delivered gained stream of every event.
	MeanDisruptionMs float64
	MaxDisruptionMs  float64
	// DeliveredGained / UndeliveredGained aggregate the per-event counts.
	DeliveredGained   int
	UndeliveredGained int
	// FinalAccepted and FinalRejected snapshot the forest's accounting at
	// session end.
	FinalAccepted int
	FinalRejected int
}

// evItem is a heap entry: either a frame arrival or a control event.
// Control events sort before frame arrivals at equal timestamps, so a
// frame forwarded at exactly the event time already sees the new forest.
type evItem struct {
	at      float64
	control bool
	node    int
	stream  stream.ID
	seq     int // frame sequence, or control-event index
	ord     int // insertion order: the final, total tie-break
}

func (a evItem) before(b evItem) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.control != b.control {
		return a.control
	}
	return a.ord < b.ord
}

// evHeap is a binary min-heap on evItem.before.
type evHeap []evItem

func (h *evHeap) push(e evItem) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p].before((*h)[i]) {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *evHeap) pop() evItem {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r, smallest := 2*i+1, 2*i+2, i
		if l < n && (*h)[l].before((*h)[smallest]) {
			smallest = l
		}
		if r < n && (*h)[r].before((*h)[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
	return top
}

// pendingKey identifies a gained stream awaiting its first delivery.
type pendingKey struct {
	node int
	id   stream.ID
}

// pendingGain tracks one accepted gained stream until its first frame; a
// re-subscribe of the same pair overwrites (supersedes) the older entry.
type pendingGain struct {
	event int // index into outcomes
	since float64
}

// RunEvents executes an event-driven simulation: the frame schedule of
// every stream the session ever needs plays over cfg.Forest while the
// control trace reconfigures it live. The forest is mutated in place; it
// ends in the post-trace state (callers needing the original forest must
// construct a fresh one). Events are applied in time order; ties keep the
// trace order. The trace may be unsorted.
func RunEvents(cfg Config, events []Event) (*EventResult, error) {
	if cfg.Forest == nil {
		return nil, errors.New("sim: nil forest")
	}
	if err := cfg.Profile.Validate(); err != nil {
		return nil, err
	}
	if cfg.DurationMs <= 0 {
		return nil, fmt.Errorf("sim: duration %v <= 0", cfg.DurationMs)
	}
	if cfg.HopOverheadMs < 0 || math.IsNaN(cfg.HopOverheadMs) {
		return nil, fmt.Errorf("sim: hop overhead %v invalid", cfg.HopOverheadMs)
	}
	for i, e := range events {
		if math.IsNaN(e.AtMs) || e.AtMs < 0 || e.AtMs >= cfg.DurationMs {
			return nil, fmt.Errorf("sim: event %d at %vms outside [0, %v)", i, e.AtMs, cfg.DurationMs)
		}
		switch e.Kind {
		case EventSubscribe, EventUnsubscribe, EventViewChange:
		default:
			return nil, fmt.Errorf("sim: event %d has unknown kind %d", i, int(e.Kind))
		}
	}

	f := cfg.Forest
	p := f.Problem()
	interval := cfg.Profile.FrameIntervalMs()
	frames := int(cfg.DurationMs / interval)
	if frames < 1 {
		frames = 1
	}

	// Time-sort a copy of the trace; stable keeps trace order for ties.
	trace := make([]Event, len(events))
	copy(trace, events)
	sort.SliceStable(trace, func(i, j int) bool { return trace[i].AtMs < trace[j].AtMs })

	// Capture events cover every stream the session ever disseminates:
	// the initial forest's trees plus every stream any event gains.
	// Sources capture regardless of demand; frames of a stream with no
	// subscribers die at the source.
	captured := make(map[stream.ID]bool)
	for _, t := range f.Trees() {
		captured[t.Stream] = true
	}
	for _, e := range trace {
		for _, id := range e.Gained {
			if id.Site >= 0 && id.Site < p.N() {
				captured[id] = true
			}
		}
	}
	capturedIDs := make([]stream.ID, 0, len(captured))
	for id := range captured {
		capturedIDs = append(capturedIDs, id)
	}
	sort.Slice(capturedIDs, func(i, j int) bool { return capturedIDs[i].Less(capturedIDs[j]) })

	var heap evHeap
	ord := 0
	for _, id := range capturedIDs {
		for seq := 0; seq < frames; seq++ {
			heap.push(evItem{at: float64(seq) * interval, node: id.Site, stream: id, seq: seq, ord: ord})
			ord++
		}
	}
	for i, e := range trace {
		heap.push(evItem{at: e.AtMs, control: true, seq: i, ord: ord})
		ord++
	}

	res := &EventResult{Events: make([]EventOutcome, len(trace))}
	for i, e := range trace {
		res.Events[i] = EventOutcome{Index: i, AtMs: e.AtMs, Kind: e.Kind, Node: e.Node}
	}

	acc := make(map[pendingKey]*DeliveryStats)
	pending := make(map[pendingKey]pendingGain)
	// delivered dedups frame copies: during a re-attachment a node can be
	// sent the same frame twice — once in flight from its detached old
	// parent, once forwarded by its new parent. A real receiver discards
	// the duplicate and does not re-forward it. The suppression is scoped
	// to one membership epoch: a pair that unsubscribes and re-subscribes
	// starts a fresh epoch (epochs bumps on every accepted gain), so a
	// sequence legitimately re-delivered to the new membership — e.g. via
	// a slower relay that had not yet forwarded it — is counted again.
	type deliveryID struct {
		node  int
		id    stream.ID
		seq   int
		epoch int
	}
	delivered := make(map[deliveryID]struct{})
	epochs := make(map[pendingKey]int)

	for len(heap) > 0 {
		item := heap.pop()
		if item.control {
			e := trace[item.seq]
			out := &res.Events[item.seq]
			for _, id := range e.Lost {
				if err := f.Unsubscribe(overlay.Request{Node: e.Node, Stream: id}); err != nil {
					out.Skipped++
					continue
				}
				out.LostApplied++
				// A gain withdrawn before its first frame never delivers:
				// settle it as Undelivered on its subscribing event so
				// DeliveredGained + Undelivered always equals GainedAccepted.
				k := pendingKey{node: e.Node, id: id}
				if pg, ok := pending[k]; ok {
					res.Events[pg.event].Undelivered++
					delete(pending, k)
				}
			}
			for _, id := range e.Gained {
				r, err := f.Subscribe(overlay.Request{Node: e.Node, Stream: id})
				if err != nil {
					out.Skipped++
					continue
				}
				switch r {
				case overlay.Joined, overlay.AlreadyMember:
					out.GainedAccepted++
					k := pendingKey{node: e.Node, id: id}
					// A new membership epoch: old delivered entries no
					// longer suppress this subscription's frames. A
					// superseded pending gain (re-subscribe before any
					// frame) settles as Undelivered first.
					epochs[k]++
					if pg, ok := pending[k]; ok {
						res.Events[pg.event].Undelivered++
					}
					pending[k] = pendingGain{event: item.seq, since: e.AtMs}
				default:
					out.GainedRejected++
				}
			}
			continue
		}

		t := f.Tree(item.stream)
		if t == nil || !t.Contains(item.node) {
			// The carrier left (or the stream lost its tree) while the
			// frame was in flight; the frame is discarded.
			continue
		}
		if item.node != t.Source {
			k := pendingKey{node: item.node, id: item.stream}
			dk := deliveryID{node: item.node, id: item.stream, seq: item.seq, epoch: epochs[k]}
			if _, dup := delivered[dk]; dup {
				continue
			}
			delivered[dk] = struct{}{}
			st := acc[k]
			if st == nil {
				st = &DeliveryStats{Node: item.node, Stream: item.stream}
				acc[k] = st
			}
			lat := item.at - float64(item.seq)*interval
			st.Frames++
			st.MeanLatMs += (lat - st.MeanLatMs) / float64(st.Frames)
			st.MaxLatMs = math.Max(st.MaxLatMs, lat)
			res.TotalFrames++
			res.MaxLatencyMs = math.Max(res.MaxLatencyMs, lat)
			if pg, ok := pending[k]; ok {
				d := item.at - pg.since
				out := &res.Events[pg.event]
				out.DeliveredGained++
				out.MeanDisruptionMs += (d - out.MeanDisruptionMs) / float64(out.DeliveredGained)
				out.MaxDisruptionMs = math.Max(out.MaxDisruptionMs, d)
				delete(pending, k)
			}
		}
		t.ForEachChild(item.node, func(child int) {
			heap.push(evItem{
				at:     item.at + p.Cost[item.node][child] + cfg.HopOverheadMs,
				node:   child,
				stream: item.stream,
				seq:    item.seq,
				ord:    ord,
			})
			ord++
		})
	}

	// Accepted gains that never saw a frame.
	for _, pg := range pending {
		res.Events[pg.event].Undelivered++
	}
	// Aggregate disruption across events in trace order.
	var sum float64
	for _, out := range res.Events {
		res.DeliveredGained += out.DeliveredGained
		res.UndeliveredGained += out.Undelivered
		sum += out.MeanDisruptionMs * float64(out.DeliveredGained)
		res.MaxDisruptionMs = math.Max(res.MaxDisruptionMs, out.MaxDisruptionMs)
	}
	if res.DeliveredGained > 0 {
		res.MeanDisruptionMs = sum / float64(res.DeliveredGained)
	}

	for k, st := range acc {
		if t := f.Tree(k.id); t != nil && t.Contains(k.node) && k.node != t.Source {
			h := 0
			for cur := k.node; cur != t.Source; h++ {
				parent, ok := t.Parent(cur)
				if !ok {
					return nil, fmt.Errorf("sim: tree %s disconnected at %d", t.Stream, cur)
				}
				cur = parent
			}
			st.Hops = h
		}
		res.PerSubscription = append(res.PerSubscription, *st)
	}
	sort.Slice(res.PerSubscription, func(i, j int) bool {
		a, b := res.PerSubscription[i], res.PerSubscription[j]
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Stream.Less(b.Stream)
	})
	res.FinalAccepted = f.NumAccepted()
	res.FinalRejected = f.NumRejected()
	return res, nil
}

// MinEdgeCostMs returns the smallest off-diagonal edge cost of the
// problem's latency matrix — the graph lower bound on any single overlay
// hop, and therefore on any delivered frame's latency.
func MinEdgeCostMs(p *overlay.Problem) float64 {
	min := math.Inf(1)
	for i := range p.Cost {
		for j, c := range p.Cost[i] {
			if i != j && c < min {
				min = c
			}
		}
	}
	return min
}

// VerifyEventLowerBound checks that no delivered frame beat the graph
// lower bound: every delivery crosses at least one overlay edge, so the
// per-subscription mean and max latencies must be at least the cheapest
// edge of the cost matrix. The fuzz harness runs this after every random
// trace — a simulator bug that teleports frames fails here.
func VerifyEventLowerBound(cfg Config, res *EventResult) error {
	bound := MinEdgeCostMs(cfg.Forest.Problem())
	const eps = 1e-9
	for _, st := range res.PerSubscription {
		if st.Frames == 0 {
			continue
		}
		if st.MeanLatMs+eps < bound {
			return fmt.Errorf("sim: node %d stream %s mean latency %.4fms below edge bound %.4fms",
				st.Node, st.Stream, st.MeanLatMs, bound)
		}
		if st.MaxLatMs+eps < st.MeanLatMs {
			return fmt.Errorf("sim: node %d stream %s max latency %.4fms below mean %.4fms",
				st.Node, st.Stream, st.MaxLatMs, st.MeanLatMs)
		}
	}
	if res.TotalFrames > 0 && res.MaxLatencyMs+eps < bound {
		return fmt.Errorf("sim: max latency %.4fms below edge bound %.4fms", res.MaxLatencyMs, bound)
	}
	return nil
}
