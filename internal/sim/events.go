package sim

// events.go makes the simulator event-driven: in addition to replaying a
// frame schedule over a static forest (Run), RunEvents accepts a
// time-stamped control trace — subscribe, unsubscribe and FOV view-change
// events — and applies it to the live forest mid-session through the
// overlay's dynamic operations. Frames keep flowing while the forest
// reconfigures: a frame already in flight to a node that just left is
// discarded at arrival, a subtree re-attached under a new parent misses
// the frames its old parent would have forwarded, and a freshly admitted
// subscriber starts receiving at the next frame its parent forwards.
//
// The headline metric this unlocks is *disruption latency*: for every
// event that gains streams (a view change rotating a display's FOV, or a
// plain subscribe), the time from the event to the first delivered frame
// of each newly needed stream. This is what a viewer actually experiences
// when the view changes mid-session — the quantity the paper's §6 future
// work points at measuring for ViewCast-style view dynamics.

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/tele3d/tele3d/internal/overlay"
	"github.com/tele3d/tele3d/internal/stream"
)

// EventKind classifies a control event.
type EventKind int

const (
	// EventSubscribe adds the Gained streams to the node's subscriptions.
	EventSubscribe EventKind = iota
	// EventUnsubscribe withdraws the Lost streams from the node.
	EventUnsubscribe
	// EventViewChange atomically swaps part of the node's view: the Lost
	// streams are withdrawn, then the Gained streams are subscribed — the
	// dissemination-level image of a display's FOV rotating.
	EventViewChange
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventSubscribe:
		return "subscribe"
	case EventUnsubscribe:
		return "unsubscribe"
	case EventViewChange:
		return "view-change"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one time-stamped control operation on the live forest.
type Event struct {
	// AtMs is the event time in session-relative milliseconds.
	AtMs float64
	// Kind selects the operation.
	Kind EventKind
	// Node is the subscribing RP.
	Node int
	// Gained lists streams to subscribe (EventSubscribe, EventViewChange).
	Gained []stream.ID
	// Lost lists streams to unsubscribe (EventUnsubscribe, EventViewChange).
	Lost []stream.ID
}

// EventOutcome reports what one event did to the forest and what the
// subscriber experienced afterwards.
type EventOutcome struct {
	// Index is the event's position in the (time-sorted) trace.
	Index int
	AtMs  float64
	Kind  EventKind
	Node  int
	// GainedAccepted and GainedRejected partition the event's admitted
	// gained streams by join outcome; Skipped counts operations the forest
	// could not apply (duplicate subscribes, unknown unsubscribes, invalid
	// targets) — a replayed trace that drifted from the forest state.
	GainedAccepted int
	GainedRejected int
	Skipped        int
	// LostApplied counts successful unsubscribes.
	LostApplied int
	// DeliveredGained counts accepted gained streams that received at
	// least one frame before session end; Undelivered the remainder —
	// gains still dry at session end, plus gains withdrawn (or
	// superseded by a re-subscribe) before their first frame arrived.
	// DeliveredGained + Undelivered == GainedAccepted always holds.
	DeliveredGained int
	Undelivered     int
	// MeanDisruptionMs and MaxDisruptionMs summarize, over the delivered
	// gained streams, the time from the event to the first delivered frame
	// of that stream.
	MeanDisruptionMs float64
	MaxDisruptionMs  float64
}

// EventResult is a completed event-driven simulation.
type EventResult struct {
	// PerSubscription accumulates delivery stats per (node, stream) pair
	// over the whole session, including pairs whose membership started or
	// ended mid-session; sorted by (node, stream). Hops is the overlay
	// path length at session end (0 if the node is no longer a member).
	PerSubscription []DeliveryStats
	// TotalFrames counts frame deliveries; MaxLatencyMs the worst frame
	// latency observed anywhere.
	TotalFrames  int
	MaxLatencyMs float64
	// Events holds one outcome per control event, in trace order.
	Events []EventOutcome
	// MeanDisruptionMs and MaxDisruptionMs aggregate disruption latency
	// over every delivered gained stream of every event.
	MeanDisruptionMs float64
	MaxDisruptionMs  float64
	// DeliveredGained / UndeliveredGained aggregate the per-event counts.
	DeliveredGained   int
	UndeliveredGained int
	// FinalAccepted and FinalRejected snapshot the forest's accounting at
	// session end.
	FinalAccepted int
	FinalRejected int
	// BatchApplyMs is the wall-clock time spent applying control events to
	// the live forest (the subscribe/unsubscribe mutations, not the frame
	// replay) — the simulator's half of the per-phase observability the
	// maintenance pipeline reports. Being a wall-clock measurement it is
	// the one field of the result outside the determinism contract.
	BatchApplyMs float64
}

// propItem is a heap entry for one frame copy in flight between overlay
// nodes. Source emissions and control events are not heap entries: they
// are generated from sorted cursors and merged with the heap head, so the
// heap only ever holds the (small) set of frames currently on the wire.
type propItem struct {
	// key is math.Float64bits of the arrival time: times are nonnegative,
	// so unsigned comparison of the IEEE bits preserves float order while
	// costing one integer compare in the heap's hot path.
	key  uint64
	ord  int32 // push order: the final, total tie-break
	pair int32 // node*S + stream index
	seq  int32 // frame sequence
}

func (a propItem) before(b propItem) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.ord < b.ord
}

// propHeap is a 4-ary min-heap on propItem.before. The wider fan-out
// halves the tree depth versus a binary heap, which cuts the sift-down
// cost of pop — the simulator's hottest operation — while pop order is
// unchanged: before is a total order (ord is unique), so any valid heap
// shape pops the same sequence.
type propHeap []propItem

func (h *propHeap) push(e propItem) {
	*h = append(*h, e)
	a := *h
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 4
		if a[p].before(a[i]) {
			break
		}
		a[p], a[i] = a[i], a[p]
		i = p
	}
}

func (h *propHeap) pop() propItem {
	a := *h
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a = a[:n]
	*h = a
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if a[j].before(a[m]) {
				m = j
			}
		}
		if !a[m].before(a[i]) {
			break
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
	return top
}

// propQueue is a calendar queue over propItems: a frame in flight lands in
// the 1ms bucket of its arrival time, and only the active band — every
// queued item with arrival before float64(curB+1) — lives in a (tiny)
// heap. The engine's pushes are monotone: a child's arrival is strictly
// after the delivery generating it, so the band cursor only moves forward
// and a pop costs O(band) instead of O(log queue). A push at or before the
// band goes straight into the band heap, which keeps the minimum in cur
// whenever cur is non-empty; future buckets hold their items as arena
// linked lists, newest first, and are heapified wholesale when the cursor
// reaches them. before is a total order, so the pop sequence is
// bit-identical to a single global heap's.
type propQueue struct {
	cur   propHeap
	curB  int
	heads []int32 // bucket -> arena index of its newest item; -1 empty
	arena []linkedItem
	free  int32 // freelist of drained arena slots, linked via next; -1 empty
	size  int
}

type linkedItem struct {
	propItem
	next int32 // previously pushed item of the same bucket
}

func (q *propQueue) push(e propItem) {
	q.size++
	b := int(math.Float64frombits(e.key))
	if b <= q.curB {
		q.cur.push(e)
		return
	}
	for b >= len(q.heads) {
		q.heads = append(q.heads, -1)
	}
	if idx := q.free; idx >= 0 {
		q.free = q.arena[idx].next
		q.arena[idx] = linkedItem{propItem: e, next: q.heads[b]}
		q.heads[b] = idx
		return
	}
	idx := int32(len(q.arena))
	q.arena = append(q.arena, linkedItem{propItem: e, next: q.heads[b]})
	q.heads[b] = idx
}

// settle advances the band cursor to the first non-empty bucket and drains
// it into the band heap, recycling the drained arena slots — the arena
// stays sized to the peak number of frames simultaneously in flight.
// Callers guarantee size > 0.
func (q *propQueue) settle() {
	for len(q.cur) == 0 {
		q.curB++
		for idx := q.heads[q.curB]; idx >= 0; {
			nxt := q.arena[idx].next
			q.cur.push(q.arena[idx].propItem)
			q.arena[idx].next = q.free
			q.free = idx
			idx = nxt
		}
		q.heads[q.curB] = -1
	}
}

// headKey returns the minimum item's key; call only when size > 0.
func (q *propQueue) headKey() uint64 {
	q.settle()
	return q.cur[0].key
}

func (q *propQueue) pop() propItem {
	q.settle()
	q.size--
	return q.cur.pop()
}

// RunEvents executes an event-driven simulation: the frame schedule of
// every stream the session ever needs plays over cfg.Forest while the
// control trace reconfigures it live. The forest is mutated in place; it
// ends in the post-trace state (callers needing the original forest must
// construct a fresh one). Events are applied in time order; ties keep the
// trace order. The trace may be unsorted.
func RunEvents(cfg Config, events []Event) (*EventResult, error) {
	if cfg.Forest == nil {
		return nil, errors.New("sim: nil forest")
	}
	if err := cfg.Profile.Validate(); err != nil {
		return nil, err
	}
	if cfg.DurationMs <= 0 {
		return nil, fmt.Errorf("sim: duration %v <= 0", cfg.DurationMs)
	}
	if cfg.HopOverheadMs < 0 || math.IsNaN(cfg.HopOverheadMs) {
		return nil, fmt.Errorf("sim: hop overhead %v invalid", cfg.HopOverheadMs)
	}
	for i, e := range events {
		if math.IsNaN(e.AtMs) || e.AtMs < 0 || e.AtMs >= cfg.DurationMs {
			return nil, fmt.Errorf("sim: event %d at %vms outside [0, %v)", i, e.AtMs, cfg.DurationMs)
		}
		switch e.Kind {
		case EventSubscribe, EventUnsubscribe, EventViewChange:
		default:
			return nil, fmt.Errorf("sim: event %d has unknown kind %d", i, int(e.Kind))
		}
	}

	f := cfg.Forest
	p := f.Problem()
	interval := cfg.Profile.FrameIntervalMs()
	frames := int(cfg.DurationMs / interval)
	if frames < 1 {
		frames = 1
	}

	// Time-sort a copy of the trace; stable keeps trace order for ties.
	trace := make([]Event, len(events))
	copy(trace, events)
	sort.SliceStable(trace, func(i, j int) bool { return trace[i].AtMs < trace[j].AtMs })

	// Capture events cover every stream the session ever disseminates:
	// the initial forest's trees plus every stream any event gains.
	// Sources capture regardless of demand; frames of a stream with no
	// subscribers die at the source.
	captured := make(map[stream.ID]bool)
	for _, t := range f.Trees() {
		captured[t.Stream] = true
	}
	for _, e := range trace {
		for _, id := range e.Gained {
			if id.Site >= 0 && id.Site < p.N() {
				captured[id] = true
			}
		}
	}
	capturedIDs := make([]stream.ID, 0, len(captured))
	for id := range captured {
		capturedIDs = append(capturedIDs, id)
	}
	sort.Slice(capturedIDs, func(i, j int) bool { return capturedIDs[i].Less(capturedIDs[j]) })

	// Dense pair indexing: pair = node*S + stream index into capturedIDs.
	// Every stream a successful dynamic operation can touch is captured
	// (gained streams are added above; any stream with live requests has a
	// tree at start), so per-pair simulation state lives in flat arrays
	// instead of maps keyed by (node, stream.ID).
	n := p.N()
	S := len(capturedIDs)
	sidx := make(map[stream.ID]int32, S)
	for i, id := range capturedIDs {
		sidx[id] = int32(i)
	}
	pairs := n * S

	res := &EventResult{Events: make([]EventOutcome, len(trace))}
	for i, e := range trace {
		res.Events[i] = EventOutcome{Index: i, AtMs: e.AtMs, Kind: e.Kind, Node: e.Node}
	}

	acc := make([]DeliveryStats, pairs)
	// pendingEvent/pendingSince track one accepted gained stream per pair
	// until its first frame (-1: none); a re-subscribe of the same pair
	// supersedes the older entry.
	pendingEvent := make([]int32, pairs)
	for i := range pendingEvent {
		pendingEvent[i] = -1
	}
	pendingSince := make([]float64, pairs)
	// delivered dedups frame copies: during a re-attachment a node can be
	// sent the same frame twice — once in flight from its detached old
	// parent, once forwarded by its new parent. A real receiver discards
	// the duplicate and does not re-forward it. The suppression is scoped
	// to one membership epoch: a pair that unsubscribes and re-subscribes
	// starts a fresh epoch, so a sequence legitimately re-delivered to the
	// new membership — e.g. via a slower relay that had not yet forwarded
	// it — is counted again. Epochs only ever advance, so "new epoch"
	// reduces to clearing the pair's seen-sequence bitmap.
	stride := (frames + 63) / 64
	delivered := make([]uint64, pairs*stride)

	// Per-stream tree cache: Tree() lookups dominate the frame loop and
	// trees only change while a control event runs, so cache lookups and
	// invalidate the cache after every control event.
	trees := make([]*overlay.Tree, S)
	treeKnown := make([]bool, S)
	lookupTree := func(si int32) *overlay.Tree {
		if !treeKnown[si] {
			trees[si] = f.Tree(capturedIDs[si])
			treeKnown[si] = true
		}
		return trees[si]
	}

	// Event sources, merged in the engine's total order (at, control
	// before frames, insertion order):
	//   - control events from the sorted trace (cursor ci);
	//   - source emissions, generated seq-major then stream-minor — the
	//     exact (at, ord) order the historical pre-pushed emissions had;
	//   - in-flight propagations in a calendar queue ordered by
	//     (at, push order).
	// Emission insertion orders are always below propagation ones, so at
	// equal times emissions win; controls win every tie by construction.
	var pq propQueue
	pq.heads = make([]int32, int(cfg.DurationMs)+2)
	for i := range pq.heads {
		pq.heads[i] = -1
	}
	pq.arena = make([]linkedItem, 0, 256)
	pq.cur = make(propHeap, 0, 64)
	pq.free = -1
	var propOrd int32
	ci := 0
	eSeq, eSidx := 0, 0
	if S == 0 {
		eSeq = frames // no streams: nothing ever emitted
	}

	for {
		haveC := ci < len(trace)
		haveE := eSeq < frames
		haveP := pq.size > 0
		if !haveC && !haveE && !haveP {
			break
		}
		eAt := math.Inf(1)
		if haveE {
			eAt = float64(eSeq) * interval
		}
		pAt := math.Inf(1)
		if haveP {
			pAt = math.Float64frombits(pq.headKey())
		}

		if haveC && trace[ci].AtMs <= eAt && trace[ci].AtMs <= pAt {
			applyStart := time.Now()
			e := trace[ci]
			out := &res.Events[ci]
			for _, id := range e.Lost {
				if err := f.Unsubscribe(overlay.Request{Node: e.Node, Stream: id}); err != nil {
					out.Skipped++
					continue
				}
				out.LostApplied++
				// A gain withdrawn before its first frame never delivers:
				// settle it as Undelivered on its subscribing event so
				// DeliveredGained + Undelivered always equals GainedAccepted.
				if si, ok := sidx[id]; ok {
					k := e.Node*S + int(si)
					if pendingEvent[k] >= 0 {
						res.Events[pendingEvent[k]].Undelivered++
						pendingEvent[k] = -1
					}
				}
			}
			for _, id := range e.Gained {
				r, err := f.Subscribe(overlay.Request{Node: e.Node, Stream: id})
				if err != nil {
					out.Skipped++
					continue
				}
				switch r {
				case overlay.Joined, overlay.AlreadyMember:
					out.GainedAccepted++
					si := sidx[id]
					k := e.Node*S + int(si)
					// A new membership epoch: old delivered entries no
					// longer suppress this subscription's frames. A
					// superseded pending gain (re-subscribe before any
					// frame) settles as Undelivered first.
					clear(delivered[k*stride : (k+1)*stride])
					if pendingEvent[k] >= 0 {
						res.Events[pendingEvent[k]].Undelivered++
					}
					pendingEvent[k] = int32(ci)
					pendingSince[k] = e.AtMs
				default:
					out.GainedRejected++
				}
			}
			ci++
			// The forest may have grown, pruned or recycled trees.
			clear(treeKnown)
			res.BatchApplyMs += float64(time.Since(applyStart)) / float64(time.Millisecond)
			continue
		}

		var at float64
		var node int
		var si int32
		var seq int
		if haveE && eAt <= pAt {
			at, si, seq = eAt, int32(eSidx), eSeq
			node = capturedIDs[eSidx].Site
			eSidx++
			if eSidx == S {
				eSidx, eSeq = 0, eSeq+1
			}
		} else {
			item := pq.pop()
			at, seq = math.Float64frombits(item.key), int(item.seq)
			node, si = int(item.pair)/S, item.pair%int32(S)
		}

		t := lookupTree(si)
		if t == nil || !t.Contains(node) {
			// The carrier left (or the stream lost its tree) while the
			// frame was in flight; the frame is discarded.
			continue
		}
		if node != t.Source {
			k := node*S + int(si)
			word, bit := k*stride+seq/64, uint64(1)<<(seq%64)
			if delivered[word]&bit != 0 {
				continue
			}
			delivered[word] |= bit
			st := &acc[k]
			if st.Frames == 0 {
				st.Node, st.Stream = node, capturedIDs[si]
			}
			lat := at - float64(seq)*interval
			st.Frames++
			st.MeanLatMs += (lat - st.MeanLatMs) / float64(st.Frames)
			// Latencies and disruptions are positive finite, so a plain
			// compare matches math.Max without the NaN/signed-zero checks.
			if lat > st.MaxLatMs {
				st.MaxLatMs = lat
			}
			res.TotalFrames++
			if lat > res.MaxLatencyMs {
				res.MaxLatencyMs = lat
			}
			if pendingEvent[k] >= 0 {
				d := at - pendingSince[k]
				out := &res.Events[pendingEvent[k]]
				out.DeliveredGained++
				out.MeanDisruptionMs += (d - out.MeanDisruptionMs) / float64(out.DeliveredGained)
				if d > out.MaxDisruptionMs {
					out.MaxDisruptionMs = d
				}
				pendingEvent[k] = -1
			}
		}
		costRow := p.Cost[node]
		for _, child := range t.ChildrenRef(node) {
			pq.push(propItem{
				key:  math.Float64bits(at + costRow[child] + cfg.HopOverheadMs),
				ord:  propOrd,
				pair: int32(child)*int32(S) + si,
				seq:  int32(seq),
			})
			propOrd++
		}
	}

	// Accepted gains that never saw a frame.
	for _, ev := range pendingEvent {
		if ev >= 0 {
			res.Events[ev].Undelivered++
		}
	}
	// Aggregate disruption across events in trace order.
	var sum float64
	for _, out := range res.Events {
		res.DeliveredGained += out.DeliveredGained
		res.UndeliveredGained += out.Undelivered
		sum += out.MeanDisruptionMs * float64(out.DeliveredGained)
		res.MaxDisruptionMs = math.Max(res.MaxDisruptionMs, out.MaxDisruptionMs)
	}
	if res.DeliveredGained > 0 {
		res.MeanDisruptionMs = sum / float64(res.DeliveredGained)
	}

	// Pair order is (node, stream) with streams sorted, so iterating flat
	// accumulators yields PerSubscription already in its documented order.
	for k := range acc {
		st := &acc[k]
		if st.Frames == 0 {
			continue
		}
		node, si := k/S, int32(k%S)
		if t := lookupTree(si); t != nil && t.Contains(node) && node != t.Source {
			h := 0
			for cur := node; cur != t.Source; h++ {
				parent, ok := t.Parent(cur)
				if !ok {
					return nil, fmt.Errorf("sim: tree %s disconnected at %d", t.Stream, cur)
				}
				cur = parent
			}
			st.Hops = h
		}
		res.PerSubscription = append(res.PerSubscription, *st)
	}
	res.FinalAccepted = f.NumAccepted()
	res.FinalRejected = f.NumRejected()
	return res, nil
}

// MinEdgeCostMs returns the smallest off-diagonal edge cost of the
// problem's latency matrix — the graph lower bound on any single overlay
// hop, and therefore on any delivered frame's latency.
func MinEdgeCostMs(p *overlay.Problem) float64 {
	min := math.Inf(1)
	for i := range p.Cost {
		for j, c := range p.Cost[i] {
			if i != j && c < min {
				min = c
			}
		}
	}
	return min
}

// VerifyEventLowerBound checks that no delivered frame beat the graph
// lower bound: every delivery crosses at least one overlay edge, so the
// per-subscription mean and max latencies must be at least the cheapest
// edge of the cost matrix. The fuzz harness runs this after every random
// trace — a simulator bug that teleports frames fails here.
func VerifyEventLowerBound(cfg Config, res *EventResult) error {
	bound := MinEdgeCostMs(cfg.Forest.Problem())
	const eps = 1e-9
	for _, st := range res.PerSubscription {
		if st.Frames == 0 {
			continue
		}
		if st.MeanLatMs+eps < bound {
			return fmt.Errorf("sim: node %d stream %s mean latency %.4fms below edge bound %.4fms",
				st.Node, st.Stream, st.MeanLatMs, bound)
		}
		if st.MaxLatMs+eps < st.MeanLatMs {
			return fmt.Errorf("sim: node %d stream %s max latency %.4fms below mean %.4fms",
				st.Node, st.Stream, st.MaxLatMs, st.MeanLatMs)
		}
	}
	if res.TotalFrames > 0 && res.MaxLatencyMs+eps < bound {
		return fmt.Errorf("sim: max latency %.4fms below edge bound %.4fms", res.MaxLatencyMs, bound)
	}
	return nil
}
