package sim

// fuzz_test.go fuzzes the event-driven simulator with random traces over
// a live forest. Three properties must survive any input:
//
//   - RunEvents terminates (the discrete-event loop cannot stall: every
//     forwarded frame moves strictly forward in time because edge costs
//     are positive — a deadlock here would hang the fuzzer and fail);
//   - the forest passes Validate after the trace;
//   - no reported latency beats the graph lower bound (a frame cannot
//     arrive faster than the cheapest edge of the cost matrix).

import (
	"math/rand"
	"testing"

	"github.com/tele3d/tele3d/internal/overlay"
	"github.com/tele3d/tele3d/internal/stream"
)

// fuzzForest builds a 5-node forest with contention and an initial
// workload, deterministic in the seed.
func fuzzForest(seed int64) (*overlay.Forest, error) {
	const n = 5
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			if i != j {
				cost[i][j] = float64(2 + (i*3+j)%9)
			}
		}
	}
	p := &overlay.Problem{
		In:    []int{4, 3, 5, 4, 3},
		Out:   []int{4, 5, 3, 5, 4},
		Cost:  cost,
		Bcost: 25,
	}
	for node := 0; node < n; node++ {
		for j := 0; j < n; j++ {
			if j != node && (node*2+j)%3 == 0 {
				p.Requests = append(p.Requests, overlay.Request{
					Node: node, Stream: stream.ID{Site: j, Index: j % 2},
				})
			}
		}
	}
	return overlay.RJ{}.Construct(p, rand.New(rand.NewSource(seed)))
}

// FuzzSimEvents decodes the fuzz input as an event trace (5 bytes per
// event: time, kind, node, site, index) and replays it through RunEvents.
func FuzzSimEvents(f *testing.F) {
	f.Add([]byte{10, 0, 1, 2, 0, 200, 1, 1, 2, 0}, int64(1))
	f.Add([]byte{50, 2, 3, 0, 1, 50, 2, 4, 0, 1, 90, 0, 3, 0, 1}, int64(5))
	f.Add([]byte{0, 0, 0, 0, 0}, int64(9))
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		forest, err := fuzzForest(seed)
		if err != nil {
			t.Fatal(err)
		}
		const durationMs = 400 // 10 fps below -> 4 frames per stream
		prof := stream.Profile{Width: 64, Height: 48, FPS: 10, CompressionRatio: 10}
		var events []Event
		for i := 0; i+4 < len(data) && len(events) < 64; i += 5 {
			at := float64(data[i]) / 256 * durationMs
			kind := EventKind(int(data[i+1]) % 3)
			node := int(data[i+2]) % 5
			id := stream.ID{Site: int(data[i+3]) % 5, Index: int(data[i+4]) % 3}
			e := Event{AtMs: at, Kind: kind, Node: node}
			switch kind {
			case EventSubscribe:
				e.Gained = []stream.ID{id}
			case EventUnsubscribe:
				e.Lost = []stream.ID{id}
			case EventViewChange:
				e.Gained = []stream.ID{id}
				e.Lost = []stream.ID{{Site: (id.Site + 1) % 5, Index: id.Index}}
			}
			events = append(events, e)
		}
		cfg := Config{Forest: forest, Profile: prof, DurationMs: durationMs}
		res, err := RunEvents(cfg, events)
		if err != nil {
			t.Fatalf("RunEvents: %v", err)
		}
		if err := forest.Validate(); err != nil {
			t.Fatalf("forest invalid after trace: %v", err)
		}
		if err := VerifyEventLowerBound(cfg, res); err != nil {
			t.Fatalf("latency below graph lower bound: %v", err)
		}
		// Duplicate suppression: within one membership epoch a pair
		// receives each captured frame at most once, and a pair gains a
		// new epoch only through an accepted (re-)subscribe — so its
		// cumulative count is bounded by captures × (1 + accepted gains).
		frames := int(durationMs / prof.FrameIntervalMs())
		var accepted int
		for _, out := range res.Events {
			accepted += out.GainedAccepted
		}
		for _, st := range res.PerSubscription {
			if st.Frames > frames*(1+accepted) {
				t.Fatalf("node %d stream %s got %d frames, source captured %d (%d gains accepted)",
					st.Node, st.Stream, st.Frames, frames, accepted)
			}
		}
		// Conservation: every operation in the trace is accounted exactly
		// once across accepted/rejected/applied/skipped, and no event
		// reports more delivered+undelivered gains than it accepted.
		var wantOps, gotOps int
		for _, e := range events {
			wantOps += len(e.Gained) + len(e.Lost)
		}
		for _, out := range res.Events {
			gotOps += out.GainedAccepted + out.GainedRejected + out.LostApplied + out.Skipped
			if out.DeliveredGained+out.Undelivered != out.GainedAccepted {
				t.Fatalf("event %d: delivered %d + undelivered %d != accepted %d",
					out.Index, out.DeliveredGained, out.Undelivered, out.GainedAccepted)
			}
		}
		if gotOps != wantOps {
			t.Fatalf("outcomes account for %d ops, trace carried %d", gotOps, wantOps)
		}
	})
}
