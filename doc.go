// Package tele3d is a reproduction of "Towards Multi-Site Collaboration
// in 3D Tele-Immersive Environments" (Wu, Yang, Gupta, Nahrstedt,
// ICDCS 2008): a publish-subscribe model for multi-site 3D tele-immersion
// whose core is the static construction of a dissemination overlay — a
// forest of multicast trees over per-site rendezvous points — under
// bandwidth and latency constraints.
//
// The implementation lives under internal/: the overlay construction
// algorithms (internal/overlay), the FOV subscription framework
// (internal/fov), workload and topology substrates (internal/workload,
// internal/topology, internal/geo), the stream model (internal/stream),
// a real TCP data plane (internal/transport, internal/rp,
// internal/membership), a discrete-event data-plane simulator
// (internal/sim), and the experiment harness regenerating every figure of
// the paper's evaluation (internal/experiments, cmd/tisim).
//
// The simulator is event-driven: beyond replaying a frame schedule over
// a static forest, sim.RunEvents applies a time-stamped trace of
// subscribe, unsubscribe and FOV view-change events to the live forest
// through the overlay's dynamic operations, and reports per-event
// *disruption latency* — the time from a view change to the first
// delivered frame of each newly needed stream. Churn traces come from
// the session layer: workload.ChurnProfile schedules seeded Poisson
// churn (rate, view-change vs join/leave mix) and session.ChurnTrace
// binds each slot to concrete streams by rotating display FOVs and
// diffing their contributing stream sets.
//
// The networked plane supports the same dynamics live: the membership
// server is a long-lived control loop (registration connections stay
// open; MsgResubscribe diffs are applied to the live forest and
// epoch-versioned MsgRoutesUpdate deltas are pushed to the affected RPs
// only), and rp.Node hot-swaps an immutable, epoch-tagged routing-table
// snapshot while frames keep flowing — stale in-flight frames are
// discarded, duplicates across a parent swap are suppressed by a
// per-stream sequence watermark, and the first delivered frame of each
// gained stream is timestamped. session.RunLive drives a churn trace
// over real TCP loopback and reports the same disruption-latency metric
// as sim.RunEvents; session.SimPrediction reconstructs the membership
// server's exact forest so the two planes are directly comparable
// (cmd/tisim -churn -live prints them side by side).
//
// The plane is fabric-agnostic: every listen and dial goes through
// transport.Network, whose TCP implementation preserves the behaviour
// above byte for byte while transport.VirtualNetwork runs the identical
// protocol stack over in-memory links with emulated per-link latency,
// jitter, loss and bandwidth. One process hosts thousand-node clusters
// (session.RunCluster, cmd/ticluster -virtual), and a scenario library
// (flash crowd, regional partition, correlated churn, slow links)
// pairs churn traces with runtime fabric impairments. ARCHITECTURE.md
// at the repository root maps the layers and follows a frame and a
// resubscribe through them.
//
// Evaluation runs on a parallel experiment engine
// (internal/experiments/engine.go): every Monte-Carlo sample is a pure
// function of the seed and sample index, fanned across a worker pool and
// reduced in deterministic order, so results are bit-identical at any
// parallelism — the churn experiment (Runner.ChurnExperiment, cmd/tisim
// -churn) included. cmd/tisweep sweeps that engine over parameter grids
// (sites, streams per site, bandwidth budget, latency bound, algorithms,
// churn rate and view-change mix), streaming per-cell records to CSV and
// JSON-Lines. Golden regression tests (internal/experiments/testdata)
// pin every figure's output byte-for-byte, and native fuzz targets drive
// random churn against the overlay invariants and the simulator's graph
// lower bound.
//
// The root package carries the repository-level benchmarks: one per paper
// table/figure (bench_test.go), including the serial-vs-parallel engine
// pair (BenchmarkFig8aSerial / BenchmarkFig8aParallel). `make bench`
// records each run as a machine-readable BENCH_<date>.json trajectory
// point (cmd/benchjson), and CI's bench-compare gate fails any pull
// request that regresses the overlay-core micro-benchmarks more than 20%
// against the committed baseline.
//
// # Flat-array invariants
//
// The overlay core stores every tree as dense flat arrays keyed by node
// index — parent pointers (int32, -1 for "absent"), accumulated costs,
// join-ordered child lists — plus a membership list maintained
// incrementally in ascending node order. Two contracts follow:
//
//   - Dense node indexing: RP identifiers are small contiguous integers
//     (array indices), as produced by overlay.Problem. Arrays grow to the
//     highest node index touched; in steady state Join, Subscribe and
//     Unsubscribe allocate nothing (pinned by testing.AllocsPerRun
//     regression tests in internal/overlay).
//
//   - Iteration-order determinism: Tree.ForEachNode/Nodes visit members
//     in ascending node order — exactly the order the historical
//     sort.Ints(Nodes()) produced — and Forest's tree iteration is
//     ascending by stream ID via incrementally maintained sorted
//     indexes. Every golden file and the engine's bit-identical
//     parallelism contract rest on this order never changing.
package tele3d
