# Local targets mirror .github/workflows/ci.yml step for step, so a green
# `make ci` locally means a green CI run.

GO ?= go

.PHONY: build fmt-check vet test race live-race bench bench-smoke bench-compare sweep-smoke fuzz-smoke cover profile ci

build:
	$(GO) build ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# live-race exercises the networked control/data plane — transport,
# membership control loop, RP hot-swap, and the live-vs-sim churn
# cross-check — under the race detector with a bounded timeout, so a
# deadlocked control loop fails fast instead of hanging CI.
live-race:
	$(GO) test -race -timeout 180s \
		./internal/transport ./internal/membership ./internal/rp ./internal/session

# bench runs the full suite at the default 1s benchtime (stable ns/op,
# unlike a single-iteration smoke) and records the machine-readable
# trajectory point BENCH_<date>.json (benchmark name -> ns/op, allocs/op,
# headline metrics) alongside the human-readable output. The go test
# output is captured to a file (not piped) so a failing or panicking
# benchmark fails the target instead of being masked by the pipeline.
BENCH_DATE ?= $(shell date +%F)
BENCH_JSON ?= BENCH_$(BENCH_DATE).json
bench:
	$(GO) test -bench=. -benchmem -run '^$$' . > /tmp/tele3d-bench.txt || { cat /tmp/tele3d-bench.txt; exit 1; }
	@cat /tmp/tele3d-bench.txt
	$(GO) run ./cmd/benchjson -o $(BENCH_JSON) -date $(BENCH_DATE) < /tmp/tele3d-bench.txt
	@echo "wrote $(BENCH_JSON)"

# bench-smoke runs the Fig8a serial/parallel pair once — enough to catch a
# broken benchmark without paying for a full measurement — and emits the
# JSON artifact CI uploads.
bench-smoke:
	$(GO) test -bench=Fig8a -benchtime=1x -run '^$$' . > /tmp/tele3d-bench-smoke.txt || { cat /tmp/tele3d-bench-smoke.txt; exit 1; }
	@cat /tmp/tele3d-bench-smoke.txt
	$(GO) run ./cmd/benchjson -o bench-smoke.json < /tmp/tele3d-bench-smoke.txt

# bench-compare re-runs the overlay-core micro-benchmarks at the default
# benchtime and fails if any regresses its ns/op by more than
# BENCH_THRESHOLD against the committed baseline (the newest BENCH_*.json
# in the repo; override with BENCH_BASELINE=...). ns/op comparisons are
# only meaningful on comparable hardware — regenerate the baseline with
# `make bench` when the reference machine changes, or widen the
# threshold for noisy shared runners.
BENCH_BASELINE ?= $(shell ls BENCH_*.json 2>/dev/null | sort | tail -1)
BENCH_THRESHOLD ?= 0.20
bench-compare:
	@test -n "$(BENCH_BASELINE)" || { echo "no BENCH_*.json baseline committed"; exit 1; }
	$(GO) test -bench='Construct|Fig8aSerial|Churn$$' -run '^$$' . > /tmp/tele3d-bench-cmp.txt || { cat /tmp/tele3d-bench-cmp.txt; exit 1; }
	@cat /tmp/tele3d-bench-cmp.txt
	$(GO) run ./cmd/benchjson -compare $(BENCH_BASELINE) -threshold $(BENCH_THRESHOLD) < /tmp/tele3d-bench-cmp.txt

# profile captures CPU and heap profiles of the serial Fig. 8a sweep — the
# calibrated hot path every overlay perf change should start from.
profile:
	$(GO) run ./cmd/tisim -fig 8a -samples 50 -parallel 1 \
		-cpuprofile cpu.prof -memprofile mem.prof > /dev/null
	@echo "wrote cpu.prof mem.prof; view with: go tool pprof -http=: cpu.prof"

# sweep-smoke drives cmd/tisweep end-to-end over an 8-cell grid and checks
# the CSV and JSONL record counts (header + 8 rows; 8 records).
sweep-smoke:
	$(GO) run ./cmd/tisweep -n 3,4 -alg stf,rj -bcost 2.5,3.0 -samples 5 -seed 1 \
		-csv /tmp/tisweep-smoke.csv -jsonl /tmp/tisweep-smoke.jsonl -quiet
	@test "$$(wc -l < /tmp/tisweep-smoke.csv)" -eq 9 || { echo "bad CSV row count"; exit 1; }
	@test "$$(wc -l < /tmp/tisweep-smoke.jsonl)" -eq 8 || { echo "bad JSONL record count"; exit 1; }
	@echo "sweep-smoke OK"

# fuzz-smoke runs each native fuzz target briefly — enough for the
# coverage-guided mutator to probe beyond the seed corpus without turning
# CI into a fuzzing campaign. `go test -fuzz` accepts one target at a
# time, hence one invocation per target.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzDynamicChurn$$' -fuzztime 20s ./internal/overlay
	$(GO) test -run '^$$' -fuzz '^FuzzSimEvents$$' -fuzztime 20s ./internal/sim

# cover prints per-package statement coverage for the internal tree; CI
# publishes this into the workflow summary.
cover:
	$(GO) test -cover ./internal/...

ci: build fmt-check vet race live-race bench-smoke sweep-smoke fuzz-smoke
