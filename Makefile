# Local targets mirror .github/workflows/ci.yml step for step, so a green
# `make ci` locally means a green CI run.

GO ?= go

.PHONY: build fmt-check vet test race live-race bench bench-smoke bench-compare sweep-smoke fuzz-smoke cluster-smoke failover-smoke tenant-smoke chaos-smoke batch-smoke lint-docs cover profile ci

build:
	$(GO) build ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# live-race exercises the networked control/data plane — transport,
# membership control loop, RP hot-swap, and the live-vs-sim churn
# cross-check — under the race detector with a bounded timeout, so a
# deadlocked control loop fails fast instead of hanging CI.
live-race:
	$(GO) test -race -timeout 180s \
		./internal/transport ./internal/membership ./internal/rp ./internal/session

# bench runs the full suite at the default 1s benchtime (stable ns/op,
# unlike a single-iteration smoke) and records the machine-readable
# trajectory point BENCH_<date>.json (benchmark name -> ns/op, allocs/op,
# headline metrics) alongside the human-readable output. The go test
# output is captured to a mktemp file (not piped, so a failing benchmark
# fails the target; not a fixed name, so concurrent invocations cannot
# clobber each other's capture).
BENCH_DATE ?= $(shell date +%F)
BENCH_JSON ?= BENCH_$(BENCH_DATE).json
bench:
	@out="$$(mktemp /tmp/tele3d-bench.XXXXXX)"; trap 'rm -f "$$out"' EXIT; \
	$(GO) test -bench=. -benchmem -run '^$$' . > "$$out" || { cat "$$out"; exit 1; }; \
	cat "$$out"; \
	$(GO) run ./cmd/benchjson -o $(BENCH_JSON) -date $(BENCH_DATE) < "$$out" && \
	echo "wrote $(BENCH_JSON)"

# bench-smoke runs the Fig8a serial/parallel pair once — enough to catch a
# broken benchmark without paying for a full measurement — and emits the
# JSON artifact CI uploads.
bench-smoke:
	@out="$$(mktemp /tmp/tele3d-bench-smoke.XXXXXX)"; trap 'rm -f "$$out"' EXIT; \
	$(GO) test -bench=Fig8a -benchtime=1x -run '^$$' . > "$$out" || { cat "$$out"; exit 1; }; \
	cat "$$out"; \
	$(GO) run ./cmd/benchjson -o bench-smoke.json < "$$out"

# bench-compare re-runs the overlay-core micro-benchmarks at the default
# benchtime and fails if any regresses its ns/op by more than
# BENCH_THRESHOLD against the committed baseline (the newest BENCH_*.json
# in the repo; override with BENCH_BASELINE=...). ns/op comparisons are
# only meaningful on comparable hardware — regenerate the baseline with
# `make bench` when the reference machine changes, or widen the
# threshold for noisy shared runners.
BENCH_BASELINE ?= $(shell ls BENCH_*.json 2>/dev/null | sort | tail -1)
BENCH_THRESHOLD ?= 0.20
bench-compare:
	@test -n "$(BENCH_BASELINE)" || { echo "no BENCH_*.json baseline committed"; exit 1; }
	@out="$$(mktemp /tmp/tele3d-bench-cmp.XXXXXX)"; trap 'rm -f "$$out"' EXIT; \
	$(GO) test -bench='Construct|Fig8aSerial|Churn$$' -run '^$$' . > "$$out" || { cat "$$out"; exit 1; }; \
	cat "$$out"; \
	$(GO) run ./cmd/benchjson -compare $(BENCH_BASELINE) -threshold $(BENCH_THRESHOLD) < "$$out"

# profile captures CPU and heap profiles of the serial Fig. 8a sweep — the
# calibrated hot path every overlay perf change should start from.
profile:
	$(GO) run ./cmd/tisim -fig 8a -samples 50 -parallel 1 \
		-cpuprofile cpu.prof -memprofile mem.prof > /dev/null
	@echo "wrote cpu.prof mem.prof; view with: go tool pprof -http=: cpu.prof"

# sweep-smoke drives cmd/tisweep end-to-end over an 8-cell grid and checks
# the CSV and JSONL record counts (header + 8 rows; 8 records).
sweep-smoke:
	$(GO) run ./cmd/tisweep -n 3,4 -alg stf,rj -bcost 2.5,3.0 -samples 5 -seed 1 \
		-csv /tmp/tisweep-smoke.csv -jsonl /tmp/tisweep-smoke.jsonl -quiet
	@test "$$(wc -l < /tmp/tisweep-smoke.csv)" -eq 9 || { echo "bad CSV row count"; exit 1; }
	@test "$$(wc -l < /tmp/tisweep-smoke.jsonl)" -eq 8 || { echo "bad JSONL record count"; exit 1; }
	@echo "sweep-smoke OK"

# cluster-smoke boots a 50-node virtual cluster under the race detector
# and runs the flash-crowd scenario end to end — the full membership+RP
# stack over the in-memory fabric, with records emitted to prove the
# sink path. Small enough for CI, racy enough to matter.
cluster-smoke:
	$(GO) run -race ./cmd/ticluster -virtual -nodes 50 -scenario flash-crowd \
		-cameras 2 -displays 1 -duration 1500ms -churnrate 4 -seed 7 \
		-csv /tmp/ticluster-smoke.csv -jsonl /tmp/ticluster-smoke.jsonl
	@test "$$(wc -l < /tmp/ticluster-smoke.csv)" -eq 2 || { echo "bad cluster CSV row count"; exit 1; }
	@test "$$(wc -l < /tmp/ticluster-smoke.jsonl)" -eq 1 || { echo "bad cluster JSONL record count"; exit 1; }
	@echo "cluster-smoke OK"

# failover-smoke is the control-plane chaos drill: a 100-node virtual
# cluster with a 2-shard membership plane runs the failover scenario
# under the race detector — one shard's primary is killed mid-flash-crowd
# and every RP must recover through the standby. The run fails if the
# worst per-event disruption is unbounded (-maxdisruption), and the
# emitted records must carry the failover event.
failover-smoke:
	@jsonl="$$(mktemp /tmp/tele3d-failover.XXXXXX)"; trap 'rm -f "$$jsonl"' EXIT; \
	$(GO) run -race ./cmd/ticluster -virtual -nodes 100 -shards 2 -scenario failover \
		-cameras 2 -displays 1 -duration 1500ms -churnrate 4 -seed 7 \
		-maxdisruption 2500 -jsonl "$$jsonl" || exit 1; \
	grep -q '"failovers":1' "$$jsonl" || { echo "record missing failover event:"; cat "$$jsonl"; exit 1; }; \
	grep -q '"shards":2' "$$jsonl" || { echo "record missing shard count:"; cat "$$jsonl"; exit 1; }; \
	echo "failover-smoke OK"

# tenant-smoke is the multi-tenant SLO drill: a 100-node fabric serves
# four tenants (premium, standard, two best-effort) with the shared
# per-PoP uplink pool capped low enough to overload, under the race
# detector. The emitted records must carry the per-tenant columns, the
# premium tenant must see zero rejections, and at least one best-effort
# tenant must absorb rejections — the cross-tenant arbitration contract.
tenant-smoke:
	@jsonl="$$(mktemp /tmp/tele3d-tenant.XXXXXX)"; trap 'rm -f "$$jsonl"' EXIT; \
	$(GO) run -race ./cmd/ticluster -virtual -nodes 100 -tenants 4 -uplink 4 \
		-cameras 2 -displays 1 -duration 1500ms -churnrate 4 -seed 7 \
		-jsonl "$$jsonl" || exit 1; \
	test "$$(wc -l < "$$jsonl")" -eq 4 || { echo "want one record per tenant:"; cat "$$jsonl"; exit 1; }; \
	grep -q '"slo_class":"premium"' "$$jsonl" || { echo "records missing premium tenant:"; cat "$$jsonl"; exit 1; }; \
	grep -q '"tenant":' "$$jsonl" || { echo "records missing tenant column:"; cat "$$jsonl"; exit 1; }; \
	grep -q '"admitted":' "$$jsonl" || { echo "records missing admitted column:"; cat "$$jsonl"; exit 1; }; \
	grep -E -q '"slo_class":"premium"[^\n]*"rejections":0' "$$jsonl" || { echo "premium tenant was rejected:"; cat "$$jsonl"; exit 1; }; \
	grep -E -q '"slo_class":"besteffort"[^\n]*"rejections":[1-9]' "$$jsonl" || { echo "overload produced no besteffort rejection:"; cat "$$jsonl"; exit 1; }; \
	echo "tenant-smoke OK"

# chaos-smoke is the fault-injection drill: a 100-node virtual cluster
# with a 2-shard membership plane absorbs a composed chaos schedule —
# an RP crash whose rejoin lands inside a fabric-wide latency storm —
# under the race detector. The emitted record must carry the resolved
# schedule, the fault count and the retry total, proving the chaos
# columns flow end to end.
chaos-smoke:
	@jsonl="$$(mktemp /tmp/tele3d-chaos.XXXXXX)"; trap 'rm -f "$$jsonl"' EXIT; \
	$(GO) run -race ./cmd/ticluster -virtual -nodes 100 -shards 2 -scenario chaos \
		-chaos '300:rp-crash:rand;450:latency-storm:2:300;900:rp-rejoin:last' \
		-cameras 2 -displays 1 -duration 1500ms -churnrate 4 -seed 7 \
		-jsonl "$$jsonl" || exit 1; \
	grep -q '"chaos_events":3' "$$jsonl" || { echo "record missing chaos events:"; cat "$$jsonl"; exit 1; }; \
	grep -q '"chaos_schedule":"300:rp-crash:' "$$jsonl" || { echo "record missing resolved schedule:"; cat "$$jsonl"; exit 1; }; \
	grep -E -q '"chaos_recovery_ms":[0-9]*\.?[0-9]*[1-9]' "$$jsonl" || { echo "record missing chaos recovery:"; cat "$$jsonl"; exit 1; }; \
	grep -E -q '"retries":[1-9]' "$$jsonl" || { echo "record missing retry total:"; cat "$$jsonl"; exit 1; }; \
	echo "chaos-smoke OK"

# batch-smoke is the amortized-maintenance drill: a 100-node virtual
# cluster runs the flash-crowd scenario with membership delta batching
# enabled (-flush 40 ms windows) under the race detector. The emitted
# record must carry the per-phase maintenance columns — non-zero
# construct and batch-apply wall-clock, plus the route-rebuild and
# heap-delta columns — proving the observability plumbing flows from
# the membership servers through the session result into the sink.
batch-smoke:
	@jsonl="$$(mktemp /tmp/tele3d-batch.XXXXXX)"; trap 'rm -f "$$jsonl"' EXIT; \
	$(GO) run -race ./cmd/ticluster -virtual -nodes 100 -scenario flash-crowd \
		-flush 40 -cameras 2 -displays 1 -duration 1500ms -churnrate 4 -seed 7 \
		-jsonl "$$jsonl" || exit 1; \
	grep -E -q '"construct_ms":[0-9]*\.?[0-9]*[1-9]' "$$jsonl" || { echo "record missing construct phase:"; cat "$$jsonl"; exit 1; }; \
	grep -E -q '"batch_apply_ms":[0-9]*\.?[0-9]*[1-9]' "$$jsonl" || { echo "record missing batch-apply phase:"; cat "$$jsonl"; exit 1; }; \
	grep -q '"route_rebuild_ms":' "$$jsonl" || { echo "record missing route-rebuild column:"; cat "$$jsonl"; exit 1; }; \
	grep -q '"heap_delta_bytes":' "$$jsonl" || { echo "record missing heap-delta column:"; cat "$$jsonl"; exit 1; }; \
	echo "batch-smoke OK"

# lint-docs enforces the documentation contracts with the in-repo
# doccheck tool: every exported identifier in the networked-plane
# packages carries a doc comment (the revive/golint `exported` rule),
# every relative markdown link in the top-level docs resolves, and every
# `make <target>` the docs mention exists in this Makefile.
lint-docs:
	$(GO) run ./cmd/doccheck -exported \
		./internal/transport ./internal/membership ./internal/rp ./internal/session ./internal/chaos
	$(GO) run ./cmd/doccheck -links \
		README.md ARCHITECTURE.md examples/README.md
	$(GO) run ./cmd/doccheck -make -makefile Makefile \
		README.md ARCHITECTURE.md examples/README.md
	@echo "lint-docs OK"

# fuzz-smoke runs each native fuzz target briefly — enough for the
# coverage-guided mutator to probe beyond the seed corpus without turning
# CI into a fuzzing campaign. `go test -fuzz` accepts one target at a
# time, hence one invocation per target.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzDynamicChurn$$' -fuzztime 20s ./internal/overlay
	$(GO) test -run '^$$' -fuzz '^FuzzBatchChurn$$' -fuzztime 20s ./internal/overlay
	$(GO) test -run '^$$' -fuzz '^FuzzSimEvents$$' -fuzztime 20s ./internal/sim
	$(GO) test -run '^$$' -fuzz '^FuzzAdmission$$' -fuzztime 20s ./internal/rp

# cover prints per-package statement coverage for the internal tree; CI
# publishes this into the workflow summary.
cover:
	$(GO) test -cover ./internal/...

ci: build fmt-check vet race live-race lint-docs bench-smoke sweep-smoke cluster-smoke failover-smoke tenant-smoke chaos-smoke batch-smoke fuzz-smoke
