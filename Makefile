# Local targets mirror .github/workflows/ci.yml step for step, so a green
# `make ci` locally means a green CI run.

GO ?= go

.PHONY: build fmt-check vet test race live-race bench bench-smoke sweep-smoke fuzz-smoke cover ci

build:
	$(GO) build ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# live-race exercises the networked control/data plane — transport,
# membership control loop, RP hot-swap, and the live-vs-sim churn
# cross-check — under the race detector with a bounded timeout, so a
# deadlocked control loop fails fast instead of hanging CI.
live-race:
	$(GO) test -race -timeout 180s \
		./internal/transport ./internal/membership ./internal/rp ./internal/session

bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' .

# bench-smoke runs the Fig8a serial/parallel pair once — enough to catch a
# broken benchmark without paying for a full measurement.
bench-smoke:
	$(GO) test -bench=Fig8a -benchtime=1x -run '^$$' .

# sweep-smoke drives cmd/tisweep end-to-end over an 8-cell grid and checks
# the CSV and JSONL record counts (header + 8 rows; 8 records).
sweep-smoke:
	$(GO) run ./cmd/tisweep -n 3,4 -alg stf,rj -bcost 2.5,3.0 -samples 5 -seed 1 \
		-csv /tmp/tisweep-smoke.csv -jsonl /tmp/tisweep-smoke.jsonl -quiet
	@test "$$(wc -l < /tmp/tisweep-smoke.csv)" -eq 9 || { echo "bad CSV row count"; exit 1; }
	@test "$$(wc -l < /tmp/tisweep-smoke.jsonl)" -eq 8 || { echo "bad JSONL record count"; exit 1; }
	@echo "sweep-smoke OK"

# fuzz-smoke runs each native fuzz target briefly — enough for the
# coverage-guided mutator to probe beyond the seed corpus without turning
# CI into a fuzzing campaign. `go test -fuzz` accepts one target at a
# time, hence one invocation per target.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzDynamicChurn$$' -fuzztime 20s ./internal/overlay
	$(GO) test -run '^$$' -fuzz '^FuzzSimEvents$$' -fuzztime 20s ./internal/sim

# cover prints per-package statement coverage for the internal tree; CI
# publishes this into the workflow summary.
cover:
	$(GO) test -cover ./internal/...

ci: build fmt-check vet race live-race bench-smoke sweep-smoke fuzz-smoke
