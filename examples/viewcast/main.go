// Viewcast: demonstrates the FOV-based subscription framework (§3.2).
// A participant pans their display's viewpoint across the cyber-space;
// each new field of view is converted to its contributing streams, the
// subscription diff is reported, and the overlay forest is reconstructed —
// the ViewCast-over-publish-subscribe pipeline the paper positions itself
// under.
//
// The second half replays the same kind of view dynamics over the real
// networked plane: a membership server and per-site rendezvous points on
// loopback TCP, with the churn trace's resubscriptions applied
// mid-session over the wire and disruption latency measured from actual
// frame deliveries, side by side with the simulator's prediction.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"github.com/tele3d/tele3d/internal/fov"
	"github.com/tele3d/tele3d/internal/metrics"
	"github.com/tele3d/tele3d/internal/overlay"
	"github.com/tele3d/tele3d/internal/session"
	"github.com/tele3d/tele3d/internal/stream"
	"github.com/tele3d/tele3d/internal/workload"
)

func main() {
	s, err := session.Build(session.Spec{
		N:               5,
		CamerasPerSite:  8,
		DisplaysPerSite: 1,
		Algorithm:       overlay.RJ{},
		Seed:            17,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("participant at site 0 pans a display across the room:")
	for step := 0; step <= 4; step++ {
		az := fov.TwoPi * float64(step) / 5
		f := fov.FOV{Observer: 0, Azimuth: az, Aperture: math.Pi, Budget: session.MaxRenderStreams}
		cons, err := s.Cyberspace.Contributing(f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nstep %d: azimuth %.2f rad\n", step, az)
		fmt.Printf("  contributing streams (score):")
		for _, c := range cons {
			fmt.Printf(" %s(%.2f)", c.Stream, c.Score)
		}
		fmt.Println()

		gained, lost, err := s.Resubscribe(0, []fov.FOV{f}, overlay.RJ{}, int64(100+step))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  subscription diff: +%d -%d streams\n", len(gained), len(lost))
		fmt.Printf("  rebuilt forest: %d trees, rejection %.3f\n",
			len(s.Forest.Trees()), metrics.Rejection(s.Forest))
	}

	// Part two: the same view dynamics over the wire. A fresh session's
	// churn trace is applied mid-stream to live RPs on loopback TCP; the
	// membership server pushes routing deltas and each gained stream's
	// first delivered frame yields a measured disruption latency.
	fmt.Println("\nlive plane: replaying a churn trace over loopback TCP...")
	live, err := session.Build(session.Spec{
		N: 4, CamerasPerSite: 3, DisplaysPerSite: 1, Algorithm: overlay.RJ{}, Seed: 23,
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := session.LiveConfig{
		Profile:    stream.Profile{Width: 64, Height: 48, FPS: 15, CompressionRatio: 10},
		DurationMs: 1500,
		Algorithm:  overlay.RJ{},
		Seed:       23,
	}
	trace, err := live.ChurnTrace(workload.ChurnProfile{RatePerSec: 3, ViewChangeMix: 0.8},
		cfg.DurationMs, rand.New(rand.NewSource(9)))
	if err != nil {
		log.Fatal(err)
	}
	simRes, err := live.SimPrediction(cfg, trace)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := live.RunLive(ctx, cfg, trace)
	if err != nil {
		log.Fatal(err)
	}
	for i, e := range res.Events {
		fmt.Printf("  event %d at %4.0fms: site %d gained %d streams, live disruption %.1fms (sim predicts %.1fms)\n",
			i, e.AtMs, e.Node, e.GainedAccepted, e.MeanDisruptionMs, simRes.Events[i].MeanDisruptionMs)
	}
	fmt.Printf("  mean disruption: live %.1fms vs sim %.1fms over %d delivered gains; %d frames delivered, final epoch %d\n",
		res.MeanDisruptionMs, simRes.MeanDisruptionMs, res.DeliveredGained, res.TotalFrames, res.FinalEpoch)
}
