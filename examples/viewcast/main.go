// Viewcast: demonstrates the FOV-based subscription framework (§3.2).
// A participant pans their display's viewpoint across the cyber-space;
// each new field of view is converted to its contributing streams, the
// subscription diff is reported, and the overlay forest is reconstructed —
// the ViewCast-over-publish-subscribe pipeline the paper positions itself
// under.
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/tele3d/tele3d/internal/fov"
	"github.com/tele3d/tele3d/internal/metrics"
	"github.com/tele3d/tele3d/internal/overlay"
	"github.com/tele3d/tele3d/internal/session"
)

func main() {
	s, err := session.Build(session.Spec{
		N:               5,
		CamerasPerSite:  8,
		DisplaysPerSite: 1,
		Algorithm:       overlay.RJ{},
		Seed:            17,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("participant at site 0 pans a display across the room:")
	for step := 0; step <= 4; step++ {
		az := fov.TwoPi * float64(step) / 5
		f := fov.FOV{Observer: 0, Azimuth: az, Aperture: math.Pi, Budget: session.MaxRenderStreams}
		cons, err := s.Cyberspace.Contributing(f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nstep %d: azimuth %.2f rad\n", step, az)
		fmt.Printf("  contributing streams (score):")
		for _, c := range cons {
			fmt.Printf(" %s(%.2f)", c.Stream, c.Score)
		}
		fmt.Println()

		gained, lost, err := s.Resubscribe(0, []fov.FOV{f}, overlay.RJ{}, int64(100+step))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  subscription diff: +%d -%d streams\n", len(gained), len(lost))
		fmt.Printf("  rebuilt forest: %d trees, rejection %.3f\n",
			len(s.Forest.Trees()), metrics.Rejection(s.Forest))
	}
}
