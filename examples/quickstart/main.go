// Quickstart: assemble a four-site tele-immersive session, construct the
// dissemination overlay with Random Join, and print the multicast forest
// with its rejection and utilization metrics.
package main

import (
	"fmt"
	"log"

	"github.com/tele3d/tele3d/internal/metrics"
	"github.com/tele3d/tele3d/internal/overlay"
	"github.com/tele3d/tele3d/internal/session"
)

func main() {
	s, err := session.Build(session.Spec{
		N:               4,
		CamerasPerSite:  8,
		DisplaysPerSite: 2,
		Algorithm:       overlay.RJ{},
		Seed:            42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("sites:")
	for i, node := range s.Sites.Nodes {
		fmt.Printf("  site %d: %s (%s)\n", i, node.City.Name, node.City.Country)
	}
	fmt.Printf("\nlatency bound: %.1f ms (median pairwise cost %.1f ms)\n",
		s.Problem.Bcost, s.Sites.MedianCost())
	fmt.Printf("subscription requests: %d\n", len(s.Problem.Requests))

	fmt.Println("\nmulticast forest:")
	for _, t := range s.Forest.Trees() {
		fmt.Printf("  tree %-6s rooted at site %d:", t.Stream, t.Source)
		for _, e := range t.Edges() {
			fmt.Printf(" %d->%d", e[0], e[1])
		}
		fmt.Println()
	}

	fmt.Printf("\nrejection ratio: %.3f\n", metrics.Rejection(s.Forest))
	u := metrics.MeasureUtilization(s.Forest)
	fmt.Printf("out-degree utilization: %.1f%% (relay share %.1f%%)\n",
		100*u.MeanOut, 100*u.RelayFraction)
	for _, r := range s.Forest.Rejected() {
		fmt.Printf("rejected: %v\n", r)
	}
}
