// Dance: a TEEVE-style collaborative-dance session (the application that
// motivated the paper) running on the real data plane. Three sites —
// think Urbana, Berkeley and a remote audience — exchange live synthetic
// 3D streams over loopback TCP with emulated WAN latency, using the
// overlay forest dictated by the membership server.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"github.com/tele3d/tele3d/internal/membership"
	"github.com/tele3d/tele3d/internal/overlay"
	"github.com/tele3d/tele3d/internal/rp"
	"github.com/tele3d/tele3d/internal/stream"
)

func main() {
	// One-way latencies (ms) approximating Urbana / Berkeley / New York.
	cost := [][]float64{
		{0, 28, 12},
		{28, 0, 35},
		{12, 35, 0},
	}
	// Each dancer site runs 4 cameras; every site wants the two front
	// cameras of both other sites (the dancers' faces).
	subs := [][]stream.ID{
		{{Site: 1, Index: 0}, {Site: 1, Index: 1}, {Site: 2, Index: 0}},
		{{Site: 0, Index: 0}, {Site: 0, Index: 1}, {Site: 2, Index: 0}},
		{{Site: 0, Index: 0}, {Site: 1, Index: 0}},
	}

	srv, err := membership.New(membership.Config{
		N: 3, Cost: cost, Bcost: 120, Algorithm: overlay.CORJ{}, Seed: 9,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		if err := srv.Serve(ctx); err != nil {
			log.Fatal(err)
		}
	}()

	profile := stream.Profile{Width: 320, Height: 240, FPS: 15, CompressionRatio: 26}
	nodes := make([]*rp.Node, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		node, err := rp.New(rp.Config{
			Site: i, Membership: srv.Addr(),
			In: 20, Out: 20,
			Cameras: 4, Profile: profile, Seed: int64(i),
			Subscriptions: subs[i],
		})
		if err != nil {
			log.Fatal(err)
		}
		nodes[i] = node
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := node.Start(ctx); err != nil {
				log.Fatal(err)
			}
		}()
	}
	wg.Wait()
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()

	fmt.Println("overlay forest dictated by the membership server:")
	for _, t := range srv.Forest().Trees() {
		fmt.Printf("  %-6s:", t.Stream)
		for _, e := range t.Edges() {
			fmt.Printf(" %d->%d", e[0], e[1])
		}
		fmt.Println()
	}

	// Dance for two seconds of session time at 15 fps.
	const ticks = 30
	interval := time.Duration(profile.FrameIntervalMs() * float64(time.Millisecond))
	fmt.Printf("\nstreaming %d frames per camera at %d fps...\n", ticks, profile.FPS)
	for k := 0; k < ticks; k++ {
		for _, n := range nodes {
			if err := n.PublishTick(); err != nil {
				log.Fatal(err)
			}
		}
		time.Sleep(interval)
	}
	time.Sleep(200 * time.Millisecond) // drain in-flight frames

	fmt.Println("\nper-site delivery report:")
	for i, n := range nodes {
		stats := n.Stats()
		ids := make([]stream.ID, 0, len(stats))
		for id := range stats {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a].Less(ids[b]) })
		fmt.Printf("  site %d:\n", i)
		for _, id := range ids {
			st := stats[id]
			fmt.Printf("    %-6s %2d frames, mean latency %5.1f ms\n", id, st.Frames, st.MeanLatMs)
		}
	}
}
