// Surveillance: a distributed camera-monitoring scenario (§1 lists
// surveillance among the target applications) with eight sites, random
// stream popularity, and heterogeneous site capacities. The example
// compares plain Random Join with correlation-aware CO-RJ on the same
// workload and reports both the plain and the criticality-weighted
// rejection metric — CO-RJ sheds whole scenes less often.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/tele3d/tele3d/internal/geo"
	"github.com/tele3d/tele3d/internal/metrics"
	"github.com/tele3d/tele3d/internal/overlay"
	"github.com/tele3d/tele3d/internal/topology"
	"github.com/tele3d/tele3d/internal/workload"
)

func main() {
	backbone, err := topology.Backbone(geo.DefaultLatencyModel())
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	sites, err := topology.SelectSites(backbone, 8, rng)
	if err != nil {
		log.Fatal(err)
	}
	w, err := workload.Generate(workload.Config{
		N:                 8,
		Capacity:          workload.CapacityHeterogeneous,
		Popularity:        workload.PopularityZipfSites,
		Mode:              workload.ModeCoverage,
		CoverageRate:      1.0,
		SubscribeFraction: 0.2,
		ZipfExponent:      1.6,
	}, rng)
	if err != nil {
		log.Fatal(err)
	}
	p, err := overlay.FromWorkload(w, sites.Cost, sites.MedianCost()*3)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("monitoring centres:")
	for i, node := range sites.Nodes {
		fmt.Printf("  site %d: %-16s capacity %2d streams, %2d cameras, %2d subscriptions\n",
			i, node.City.Name, w.Sites[i].Out, w.Sites[i].NumStreams, len(w.Subs[i]))
	}

	// Average both algorithms over many construction seeds on the same
	// workload: single runs are noisy.
	const seeds = 50
	fmt.Printf("\n%-6s  %-10s %s\n", "algo", "rejection", "weighted X' (Eq. 3)")
	for _, alg := range []overlay.Algorithm{overlay.RJ{}, overlay.CORJ{}} {
		var rej, wx float64
		for seed := int64(0); seed < seeds; seed++ {
			f, err := alg.Construct(p, rand.New(rand.NewSource(seed)))
			if err != nil {
				log.Fatal(err)
			}
			if err := f.Validate(); err != nil {
				log.Fatal(err)
			}
			rej += metrics.Rejection(f)
			wx += metrics.WeightedRejectionRaw(f)
		}
		fmt.Printf("%-6s  %-10.3f %.3f\n", alg.Name(), rej/seeds, wx/seeds)
	}
	fmt.Println("\nCO-RJ trades low-criticality streams for critical ones, lowering the")
	fmt.Println("correlation-weighted loss X' at an equal raw rejection ratio.")
}
